package harness

import (
	"fmt"

	"radiocast/internal/bitvec"
	"radiocast/internal/decay"
	"radiocast/internal/exp"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rlnc"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
	"radiocast/internal/stats"
)

// E7Plan sweeps k for Theorem 1.2 and fits the slope.
func E7Plan(seeds int, quick bool) *exp.Plan {
	ks := []int{2, 4, 8, 16, 32}
	if quick {
		ks = []int{2, 4, 8}
	}
	g := graph.Grid(8, 8)
	d := graph.Eccentricity(g, 0)
	l := sched.LogN(g.N())
	p := &exp.Plan{ID: "E7", Title: "k-message broadcast, known topology (Thm 1.2)"}
	for _, k := range ks {
		for s := 0; s < seeds; s++ {
			p.Cells = append(p.Cells, exp.Cell{
				Key:        exp.Key{Experiment: "E7", Config: fmt.Sprintf("k=%d", k), Seed: uint64(s)},
				RoundLimit: broadcastLimit,
				Cost:       baselineCost(g, d) + budgetCost(g.N(), int64(k*l)),
				Run: func(limit int64) exp.Result {
					return exp.Rounds(RunGSTMulti(g, k, uint64(s), limit))
				},
			})
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   "E7: k-message broadcast, known topology (Thm 1.2)",
			Comment: fmt.Sprintf("grid-8x8, D=%d, log n=%d; paper: O(D + k log n + log^2 n) — linear in k with slope Θ(log n)", d, l),
			Header:  []string{"k", "mean rounds", "rounds/k", "ok"},
		}
		var xs, ys []float64
		for _, k := range ks {
			var rs []float64
			okAll := true
			for s := 0; s < seeds; s++ {
				r := idx[exp.Key{Experiment: "E7", Config: fmt.Sprintf("k=%d", k), Seed: uint64(s)}]
				if !r.Completed {
					okAll = false
					continue
				}
				rs = append(rs, float64(r.Rounds))
			}
			m := stats.Summarize(rs, 0, 0).Mean
			xs = append(xs, float64(k))
			ys = append(ys, m)
			t.AddRow(fmt.Sprint(k), stats.F(m), stats.F(m/float64(k)), fmt.Sprint(okAll))
		}
		fit := stats.LinearFit(xs, ys)
		t.AddRow("fit", fmt.Sprintf("slope=%s/k", stats.F(fit.Slope)),
			fmt.Sprintf("slope/logn=%s", stats.F(fit.Slope/float64(l))),
			fmt.Sprintf("R2=%s", stats.F(fit.R2)))
		return t
	}
	return p
}

// E7MultiMessageKnown runs E7 sequentially (compat wrapper).
func E7MultiMessageKnown(seeds int, quick bool) *stats.Table { return runPlan(E7Plan(seeds, quick)) }

// E8Plan runs the full Theorem 1.3 stack.
func E8Plan(seeds int, quick bool) *exp.Plan {
	type cse struct {
		g *graph.Graph
		k int
	}
	cases := []cse{
		{graph.Grid(4, 12), 8},
		{graph.ClusterChain(6, 6), 12},
	}
	if !quick {
		cases = append(cases, cse{graph.Grid(4, 20), 16})
	}
	p := &exp.Plan{ID: "E8", Title: "k-message broadcast, unknown topology + CD (Thm 1.3)"}
	for _, c := range cases {
		d := graph.Eccentricity(c.g, 0)
		budget := rings.DefaultConfig(c.g.N(), d, c.k, 1).TotalRounds()
		for s := 0; s < seeds; s++ {
			p.Cells = append(p.Cells, exp.Cell{
				Key:  exp.Key{Experiment: "E8", Config: fmt.Sprintf("graph=%s/k=%d", c.g.Name(), c.k), Seed: uint64(s)},
				Cost: budgetCost(c.g.N(), budget),
				Run: func(int64) exp.Result {
					r, ok, _ := RunTheorem13(c.g, d, c.k, 1, uint64(s))
					return exp.Rounds(r, ok)
				},
			})
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   "E8: k-message broadcast, unknown topology + CD (Thm 1.3)",
			Comment: "full pipeline: wave + parallel ring GSTs + stride-2 batch pipeline with RLNC and fountain handoffs",
			Header:  []string{"graph", "n", "D", "k", "rings", "batches", "rounds", "budget", "ok"},
		}
		for _, c := range cases {
			d := graph.Eccentricity(c.g, 0)
			cfg := rings.DefaultConfig(c.g.N(), d, c.k, 1)
			okCount := 0
			var rs []float64
			for s := 0; s < seeds; s++ {
				r := idx[exp.Key{Experiment: "E8", Config: fmt.Sprintf("graph=%s/k=%d", c.g.Name(), c.k), Seed: uint64(s)}]
				if r.Completed {
					okCount++
					rs = append(rs, float64(r.Rounds))
				}
			}
			t.AddRow(c.g.Name(), fmt.Sprint(c.g.N()), fmt.Sprint(d), fmt.Sprint(c.k),
				fmt.Sprint(cfg.Rings()), fmt.Sprint(cfg.Batches()),
				stats.F(stats.Summarize(rs, 0, 0).Mean), fmt.Sprint(cfg.TotalRounds()),
				fmt.Sprintf("%d/%d", okCount, seeds))
		}
		return t
	}
	return p
}

// E8MultiMessageUnknown runs E8 sequentially (compat wrapper).
func E8MultiMessageUnknown(seeds int, quick bool) *stats.Table { return runPlan(E8Plan(seeds, quick)) }

// jamModes labels the silent/jammed cell pairs of E9 and E10.
var jamModes = []string{"silent", "jam"}

// E9Plan reproduces Lemma 3.2: the level-clocked Decay schedule
// completes under full jamming, with bounded slowdown vs the silent
// variant.
func E9Plan(seeds int, quick bool) *exp.Plan {
	gs := []*graph.Graph{graph.Path(64), graph.Grid(8, 8)}
	if !quick {
		gs = append(gs, graph.ClusterChain(8, 6))
	}
	p := &exp.Plan{ID: "E9", Title: "Decay is MMV (Lemma 3.2)"}
	for _, g := range gs {
		cost := 3 * baselineCost(g, graph.Eccentricity(g, 0))
		for _, mode := range jamModes {
			noising := mode == "jam"
			for s := 0; s < seeds; s++ {
				p.Cells = append(p.Cells, exp.Cell{
					Key:  exp.Key{Experiment: "E9", Config: fmt.Sprintf("graph=%s/%s", g.Name(), mode), Seed: uint64(s)},
					Cost: cost,
					Run: func(int64) exp.Result {
						return exp.Rounds(runDecayMMV(g, noising, uint64(s)))
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   "E9: Decay is MMV (Lemma 3.2)",
			Comment: "jamming: nodes without the message transmit noise in their prompted slots",
			Header:  []string{"graph", "silent rounds", "jammed rounds", "ratio", "ok"},
		}
		for _, g := range gs {
			addJamRow(t, idx, "E9", g.Name(), seeds)
		}
		return t
	}
	return p
}

// addJamRow folds one graph's silent/jammed cell pairs into a table
// row; a seed counts only when both variants completed (E9/E10 share
// this pairing rule).
func addJamRow(t *stats.Table, idx map[exp.Key]exp.Result, id, name string, seeds int) {
	var silent, jammed []float64
	okAll := true
	for s := 0; s < seeds; s++ {
		a := idx[exp.Key{Experiment: id, Config: fmt.Sprintf("graph=%s/silent", name), Seed: uint64(s)}]
		b := idx[exp.Key{Experiment: id, Config: fmt.Sprintf("graph=%s/jam", name), Seed: uint64(s)}]
		if !a.Completed || !b.Completed {
			okAll = false
			continue
		}
		silent = append(silent, float64(a.Rounds))
		jammed = append(jammed, float64(b.Rounds))
	}
	ms, mj := stats.Summarize(silent, 0, 0).Mean, stats.Summarize(jammed, 0, 0).Mean
	t.AddRow(name, stats.F(ms), stats.F(mj), stats.F(mj/ms), fmt.Sprint(okAll))
}

// E9DecayMMV runs E9 sequentially (compat wrapper).
func E9DecayMMV(seeds int, quick bool) *stats.Table { return runPlan(E9Plan(seeds, quick)) }

func runDecayMMV(g *graph.Graph, noising bool, seed uint64) (int64, bool) {
	levels := graph.BFS(g, 0)
	nw := radio.New(g, radio.Config{})
	var ds DoneSet
	protos := make([]*decay.MMV, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = decay.NewMMV(g.N(), int(levels.Dist[v]), noising, decay.Message{Data: 2}, rng.New(seed, 0x91, uint64(v)))
		protos[v].DoneSet = &ds
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	initDone(&ds, g.N(), func(v int) bool { return protos[v].Has() })
	l := int64(sched.LogN(g.N()))
	limit := 200 * (int64(levels.MaxDist)*l + l*l)
	return nw.RunUntil(limit, ds.Done)
}

// E10Plan reproduces Lemma 3.3: the GST schedule under jamming.
func E10Plan(seeds int, quick bool) *exp.Plan {
	gs := []*graph.Graph{graph.Grid(8, 8), graph.Path(64)}
	if !quick {
		gs = append(gs, graph.GNP(96, 0.06, 7))
	}
	p := &exp.Plan{ID: "E10", Title: "MMV GST schedule under noise (Lemma 3.3)"}
	for _, g := range gs {
		cost := baselineCost(g, graph.Eccentricity(g, 0))
		for _, mode := range jamModes {
			noising := mode == "jam"
			for s := 0; s < seeds; s++ {
				p.Cells = append(p.Cells, exp.Cell{
					Key:        exp.Key{Experiment: "E10", Config: fmt.Sprintf("graph=%s/%s", g.Name(), mode), Seed: uint64(s)},
					RoundLimit: broadcastLimit,
					Cost:       cost,
					Run: func(limit int64) exp.Result {
						return exp.Rounds(RunGSTSingle(g, noising, uint64(s), limit))
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   "E10: MMV GST schedule under noise (Lemma 3.3)",
			Comment: "same schedule, message-less nodes jam their slots; fast waves stay collision-free (Lemma 3.5 is a test invariant)",
			Header:  []string{"graph", "silent rounds", "jammed rounds", "ratio", "ok"},
		}
		for _, g := range gs {
			addJamRow(t, idx, "E10", g.Name(), seeds)
		}
		return t
	}
	return p
}

// E10MMVGST runs E10 sequentially (compat wrapper).
func E10MMVGST(seeds int, quick bool) *stats.Table { return runPlan(E10Plan(seeds, quick)) }

// e11Block is the number of star trials batched into one E11 cell;
// cell (deg, s) runs trials [s·block, (s+1)·block), so the union over
// all cells is exactly the sequential trial set.
const e11Block = 200

// E11Plan reproduces Lemma 2.2: one Decay phase delivers with
// probability >= 1/8 at every degree.
func E11Plan(seeds int, quick bool) *exp.Plan {
	degrees := []int{1, 2, 4, 8, 32, 128}
	if quick {
		degrees = []int{1, 4, 32}
	}
	p := &exp.Plan{ID: "E11", Title: "Decay phase progress (Lemma 2.2)"}
	for _, deg := range degrees {
		for s := 0; s < seeds; s++ {
			p.Cells = append(p.Cells, exp.Cell{
				Key: exp.Key{Experiment: "E11", Config: fmt.Sprintf("deg=%d", deg), Seed: uint64(s)},
				Run: func(int64) exp.Result {
					n := deg + 2
					l := sched.LogN(n)
					succ := 0
					for trial := s * e11Block; trial < (s+1)*e11Block; trial++ {
						g := graph.Star(deg + 1)
						nw := radio.New(g, radio.Config{})
						probe := &radio.Silent{}
						nw.SetProtocol(0, probe)
						for v := 1; v <= deg; v++ {
							nw.SetProtocol(graph.NodeID(v),
								decay.NewBroadcast(n, true, decay.Message{}, rng.New(uint64(trial), 0xb1, uint64(v), uint64(deg))))
						}
						nw.Run(int64(l))
						if probe.Packets > 0 {
							succ++
						}
					}
					return exp.Value(float64(succ))
				},
			})
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		trials := e11Block * seeds
		t := &stats.Table{
			Title:   "E11: per-phase Decay progress probability (Lemma 2.2)",
			Comment: "star center listening, all leaves participating; paper bound: >= 1/8 per phase",
			Header:  []string{"degree", "success rate", "trials"},
		}
		for _, deg := range degrees {
			succ := 0.0
			for s := 0; s < seeds; s++ {
				succ += idx[exp.Key{Experiment: "E11", Config: fmt.Sprintf("deg=%d", deg), Seed: uint64(s)}].Value
			}
			t.AddRow(fmt.Sprint(deg), stats.F(succ/float64(trials)), fmt.Sprint(trials))
		}
		return t
	}
	return p
}

// E11DecayProgress runs E11 sequentially (compat wrapper).
func E11DecayProgress(seeds int, quick bool) *stats.Table { return runPlan(E11Plan(seeds, quick)) }

// rlncMeasure carries one E12 cell's counters to Assemble.
type rlncMeasure struct {
	transfer, trials  int
	overheadSum, runs int
}

// E12Plan reproduces Definition 3.8 / Proposition 3.9: infection
// transfer probability >= 1/2 and fountain decoding overhead. One cell
// per k — the trial loops share a single RNG stream, so they cannot be
// split without changing the measured numbers.
func E12Plan(seeds int, quick bool) *exp.Plan {
	ks := []int{4, 8, 16}
	if quick {
		ks = []int{4, 8}
	}
	const l = 16
	p := &exp.Plan{ID: "E12", Title: "RLNC infection and decoding (Def 3.8 / Prop 3.9)"}
	for _, k := range ks {
		p.Cells = append(p.Cells, exp.Cell{
			Key: exp.Key{Experiment: "E12", Config: fmt.Sprintf("k=%d", k), Seed: 0},
			Run: func(int64) exp.Result {
				r := rng.New(uint64(k), 0xc2)
				msgs := make([]rlnc.Message, k)
				for i := range msgs {
					msgs[i] = bitvec.RandomVec(l, r.Uint64)
				}
				src := rlnc.NewSourceBuffer(0, msgs, l)
				transfer, trials := 0, 2000*seeds
				mu := bitvec.RandomNonZeroVec(k, r.Uint64)
				for i := 0; i < trials; i++ {
					p, _ := src.RandomPacket(r)
					if bitvec.Dot(mu, p.Coeff) {
						transfer++
					}
				}
				overheadSum, runs := 0, 100*seeds
				for i := 0; i < runs; i++ {
					dec := rlnc.NewBuffer(0, k, l)
					got := 0
					for !dec.CanDecode() {
						p, _ := src.RandomPacket(r)
						dec.Add(p)
						got++
					}
					overheadSum += got - k
				}
				return exp.Result{
					Completed: true,
					Value:     float64(transfer) / float64(trials),
					Payload:   rlncMeasure{transfer, trials, overheadSum, runs},
				}
			},
		})
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   "E12: RLNC infection and decoding (Def 3.8 / Prop 3.9)",
			Comment: "transfer = P[random packet from an infected sender infects receiver]; overhead = packets beyond k until decode",
			Header:  []string{"k", "transfer rate", "mean overhead"},
		}
		for _, k := range ks {
			m, _ := idx[exp.Key{Experiment: "E12", Config: fmt.Sprintf("k=%d", k), Seed: 0}].Payload.(rlncMeasure)
			t.AddRow(fmt.Sprint(k), stats.F(float64(m.transfer)/float64(m.trials)),
				stats.F(float64(m.overheadSum)/float64(m.runs)))
		}
		return t
	}
	return p
}

// E12RLNC runs E12 sequentially (compat wrapper).
func E12RLNC(seeds int, quick bool) *stats.Table { return runPlan(E12Plan(seeds, quick)) }

// a1Run executes one A1 cell: the MMV broadcast under jamming with
// either virtual-distance or level-keyed slow slots. The GST and
// schedule are rebuilt per cell (deterministic) so cells share nothing
// mutable.
func a1Run(g *graph.Graph, levelKeyed bool, seed uint64) (int64, bool) {
	tree := gst.Construct(g, 0)
	infos := mmv.InfoFromTree(tree)
	s := mmv.NewSchedule(g.N())
	nw := radio.New(g, radio.Config{})
	var ds DoneSet
	contents := make([]*mmv.SingleMessage, g.N())
	for v := 0; v < g.N(); v++ {
		contents[v] = mmv.NewSingleMessage(v == 0, decay.Message{})
		contents[v].DoneSet = &ds
		var p *mmv.Protocol
		if levelKeyed {
			p = mmv.NewLevelKeyed(s, infos[v], contents[v], true, rng.New(seed, 0xa1, uint64(v)))
		} else {
			p = mmv.New(s, infos[v], contents[v], true, rng.New(seed, 0xa1, uint64(v)))
		}
		nw.SetProtocol(graph.NodeID(v), p)
	}
	initDone(&ds, g.N(), func(v int) bool { return contents[v].Done() })
	return nw.RunUntil(1<<18, ds.Done)
}

// A1Plan compares the MMV schedule's virtual-distance slow slots
// against the level-keyed slots of [7,19] under jamming.
func A1Plan(seeds int, quick bool) *exp.Plan {
	gs := []*graph.Graph{graph.Grid(8, 8), graph.GNP(80, 0.08, 5)}
	if quick {
		gs = gs[:1]
	}
	variants := []string{"vdist", "level"}
	p := &exp.Plan{ID: "A1", Title: "Ablation: virtual-distance vs level-keyed slow slots"}
	for _, g := range gs {
		cost := 2 * baselineCost(g, graph.Eccentricity(g, 0))
		for _, variant := range variants {
			levelKeyed := variant == "level"
			for s := 0; s < seeds; s++ {
				p.Cells = append(p.Cells, exp.Cell{
					Key:  exp.Key{Experiment: "A1", Config: fmt.Sprintf("graph=%s/%s", g.Name(), variant), Seed: uint64(s)},
					Cost: cost,
					Run: func(int64) exp.Result {
						return exp.Rounds(a1Run(g, levelKeyed, uint64(s)))
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "A1: virtual-distance vs level-keyed slow slots (jamming on)",
			Comment: "informational: the level-keyed schedule is the [7,19] style whose multi-message correctness was disproved ([22]);\n" +
				"on benign workloads both complete — the paper's change buys *provable* MMV bounds (Lemma 3.3), not universal speedup",
			Header: []string{"graph", "vdist rounds", "level rounds", "vdist ok", "level ok"},
		}
		for _, g := range gs {
			var vd, lv []float64
			vdOK, lvOK := 0, 0
			for s := 0; s < seeds; s++ {
				if r := idx[exp.Key{Experiment: "A1", Config: fmt.Sprintf("graph=%s/vdist", g.Name()), Seed: uint64(s)}]; r.Completed {
					vd = append(vd, float64(r.Rounds))
					vdOK++
				}
				if r := idx[exp.Key{Experiment: "A1", Config: fmt.Sprintf("graph=%s/level", g.Name()), Seed: uint64(s)}]; r.Completed {
					lv = append(lv, float64(r.Rounds))
					lvOK++
				}
			}
			t.AddRow(g.Name(),
				stats.F(stats.Summarize(vd, 0, 0).Mean), stats.F(stats.Summarize(lv, 0, 0).Mean),
				fmt.Sprintf("%d/%d", vdOK, seeds), fmt.Sprintf("%d/%d", lvOK, seeds))
		}
		return t
	}
	return p
}

// A1VirtualDistance runs A1 sequentially (compat wrapper).
func A1VirtualDistance(seeds int, quick bool) *stats.Table { return runPlan(A1Plan(seeds, quick)) }

// A2Plan quantifies the coding advantage ([11]'s gap).
func A2Plan(seeds int, quick bool) *exp.Plan {
	ks := []int{4, 8, 16}
	if quick {
		ks = ks[:2]
	}
	g := graph.Grid(6, 6)
	a2Cost := baselineCost(g, graph.Eccentricity(g, 0))
	variants := []string{"rlnc", "routing"}
	p := &exp.Plan{ID: "A2", Title: "Ablation: RLNC vs store-and-forward routing"}
	for _, k := range ks {
		for _, variant := range variants {
			coded := variant == "rlnc"
			for s := 0; s < seeds; s++ {
				p.Cells = append(p.Cells, exp.Cell{
					Key:        exp.Key{Experiment: "A2", Config: fmt.Sprintf("k=%d/%s", k, variant), Seed: uint64(s)},
					RoundLimit: broadcastLimit,
					Cost:       a2Cost * int64(k),
					Run: func(limit int64) exp.Result {
						if coded {
							return exp.Rounds(RunGSTMulti(g, k, uint64(s), limit))
						}
						return exp.Rounds(RunGSTMultiRouting(g, k, uint64(s), limit))
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   "A2: RLNC vs store-and-forward routing (grid-6x6)",
			Comment: "same MMV schedule, coded vs uncoded content; coding removes the coupon-collector tail",
			Header:  []string{"k", "rlnc rounds", "routing rounds", "routing/rlnc"},
		}
		for _, k := range ks {
			var cod, rou []float64
			for s := 0; s < seeds; s++ {
				if r := idx[exp.Key{Experiment: "A2", Config: fmt.Sprintf("k=%d/rlnc", k), Seed: uint64(s)}]; r.Completed {
					cod = append(cod, float64(r.Rounds))
				}
				if r := idx[exp.Key{Experiment: "A2", Config: fmt.Sprintf("k=%d/routing", k), Seed: uint64(s)}]; r.Completed {
					rou = append(rou, float64(r.Rounds))
				}
			}
			mc, mr := stats.Summarize(cod, 0, 0).Mean, stats.Summarize(rou, 0, 0).Mean
			t.AddRow(fmt.Sprint(k), stats.F(mc), stats.F(mr), stats.F(mr/mc))
		}
		return t
	}
	return p
}

// A2CodingVsRouting runs A2 sequentially (compat wrapper).
func A2CodingVsRouting(seeds int, quick bool) *stats.Table { return runPlan(A2Plan(seeds, quick)) }

// a3Config builds the ring configuration of one A3 width variant.
func a3Config(g *graph.Graph, d, w int) rings.Config {
	cfg := rings.DefaultConfig(g.N(), d, 0, 1)
	cfg.W = w
	cfg.GST.DBound = w - 1
	return cfg
}

// A3Plan sweeps the ring width of Theorem 1.1, exposing the
// construction-vs-spread trade-off the paper resolves with W=D/log^4 n.
func A3Plan(seeds int, quick bool) *exp.Plan {
	g := graph.ClusterChain(10, 4)
	d := graph.Eccentricity(g, 0)
	widths := []int{3, 5, 10, d + 1}
	if quick {
		widths = []int{3, d + 1}
	}
	p := &exp.Plan{ID: "A3", Title: "Ablation: ring width in Theorem 1.1"}
	for _, w := range widths {
		for s := 0; s < seeds; s++ {
			p.Cells = append(p.Cells, exp.Cell{
				Key:  exp.Key{Experiment: "A3", Config: fmt.Sprintf("w=%d", w), Seed: uint64(s)},
				Cost: budgetCost(g.N(), a3Config(g, d, w).TotalRounds()),
				Run: func(int64) exp.Result {
					cfg := a3Config(g, d, w)
					nw := radio.New(g, radio.Config{CollisionDetection: true})
					var ds DoneSet
					protos := make([]*rings.Protocol, g.N())
					for v := 0; v < g.N(); v++ {
						protos[v] = rings.New(cfg, graph.NodeID(v), v == 0, nil, rng.New(uint64(s), 0xa3, uint64(v)))
						protos[v].SingleContent().DoneSet = &ds
						nw.SetProtocol(graph.NodeID(v), protos[v])
					}
					initDone(&ds, g.N(), func(v int) bool { return protos[v].Has() })
					r, ok := nw.RunUntil(cfg.TotalRounds(), ds.Done)
					return exp.Rounds(r, ok)
				},
			})
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title:   fmt.Sprintf("A3: Theorem 1.1 ring width sweep (clusterchain-10x4, D=%d)", d),
			Comment: "wider rings amortize per-ring log^2 overheads but lengthen the (parallel) construction",
			Header:  []string{"W", "rings", "build rounds", "spread budget", "total rounds", "ok"},
		}
		for _, w := range widths {
			cfg := a3Config(g, d, w)
			okCount := 0
			var rs []float64
			for s := 0; s < seeds; s++ {
				if r := idx[exp.Key{Experiment: "A3", Config: fmt.Sprintf("w=%d", w), Seed: uint64(s)}]; r.Completed {
					okCount++
					rs = append(rs, float64(r.Rounds))
				}
			}
			t.AddRow(fmt.Sprint(w), fmt.Sprint(cfg.Rings()), fmt.Sprint(cfg.BuildRounds()),
				fmt.Sprint(cfg.SpreadRounds()), stats.F(stats.Summarize(rs, 0, 0).Mean),
				fmt.Sprintf("%d/%d", okCount, seeds))
		}
		return t
	}
	return p
}

// A3RingWidth runs A3 sequentially (compat wrapper).
func A3RingWidth(seeds int, quick bool) *stats.Table { return runPlan(A3Plan(seeds, quick)) }
