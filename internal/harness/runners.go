// Package harness defines every reproduction experiment (E1..E12, plus
// the ablations A1..A3 of DESIGN.md) as a reusable runner producing a
// stats.Table. The same runners back `go test -bench`, cmd/radiobench,
// and the examples, so every number in EXPERIMENTS.md can be
// regenerated three ways.
package harness

import (
	"radiocast/internal/bitvec"
	"radiocast/internal/cr"
	"radiocast/internal/decay"
	"radiocast/internal/graph"
	"radiocast/internal/gst"
	"radiocast/internal/mmv"
	"radiocast/internal/radio"
	"radiocast/internal/rings"
	"radiocast/internal/rlnc"
	"radiocast/internal/rng"
)

// RunDecay measures the classic Decay broadcast (BGI baseline) from
// node 0. Returns rounds and completion.
func RunDecay(g *graph.Graph, seed uint64, limit int64) (int64, bool) {
	rounds, ok, _ := RunDecayOn(g, nil, seed, limit)
	return rounds, ok
}

// RunDecayOn is RunDecay over an adversarial channel (nil = ideal),
// additionally returning the engine counters.
func RunDecayOn(g *graph.Graph, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	nw := radio.New(g, radio.Config{Channel: ch})
	protos := make([]*decay.Broadcast, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = decay.NewBroadcast(g.N(), v == 0, decay.Message{Data: 1}, rng.New(seed, 0xd0, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	rounds, ok := nw.RunUntil(limit, func() bool {
		for _, p := range protos {
			if !p.Has() {
				return false
			}
		}
		return true
	})
	return rounds, ok, nw.Stats()
}

// RunCR measures the Czumaj–Rytter-shaped baseline.
func RunCR(g *graph.Graph, d int, seed uint64, limit int64) (int64, bool) {
	rounds, ok, _ := RunCROn(g, d, nil, seed, limit)
	return rounds, ok
}

// RunCROn is RunCR over an adversarial channel (nil = ideal).
func RunCROn(g *graph.Graph, d int, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	p := cr.NewParams(g.N(), d)
	nw := radio.New(g, radio.Config{Channel: ch})
	protos := make([]*cr.Broadcast, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = cr.NewBroadcast(p, v == 0, decay.Message{Data: 1}, rng.New(seed, 0xc0, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	rounds, ok := nw.RunUntil(limit, func() bool {
		for _, pr := range protos {
			if !pr.Has() {
				return false
			}
		}
		return true
	})
	return rounds, ok, nw.Stats()
}

// RunGSTSingle measures the single-message GST broadcast atop a
// centralized GST (the amortized / known-structure regime), optionally
// with the MMV noise adversary.
func RunGSTSingle(g *graph.Graph, noising bool, seed uint64, limit int64) (int64, bool) {
	rounds, ok, _ := RunGSTSingleOn(g, noising, nil, seed, limit)
	return rounds, ok
}

// RunGSTSingleOn is RunGSTSingle over an adversarial channel
// (nil = ideal).
func RunGSTSingleOn(g *graph.Graph, noising bool, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	tree := gst.Construct(g, 0)
	infos := mmv.InfoFromTree(tree)
	s := mmv.NewSchedule(g.N())
	nw := radio.New(g, radio.Config{Channel: ch})
	contents := make([]*mmv.SingleMessage, g.N())
	for v := 0; v < g.N(); v++ {
		contents[v] = mmv.NewSingleMessage(v == 0, decay.Message{Data: 1})
		nw.SetProtocol(graph.NodeID(v),
			mmv.New(s, infos[v], contents[v], noising, rng.New(seed, 0xe0, uint64(v))))
	}
	rounds, ok := nw.RunUntil(limit, func() bool {
		for _, c := range contents {
			if !c.Done() {
				return false
			}
		}
		return true
	})
	return rounds, ok, nw.Stats()
}

// Theorem11Result decomposes a full Theorem 1.1 run.
type Theorem11Result struct {
	Completed                 bool
	Rounds                    int64
	WaveRounds, BuildRounds   int64
	SpreadBudget, TotalBudget int64
	Rings, Width              int
	Stats                     radio.Stats
}

// RunTheorem11 executes the full unknown-topology CD pipeline.
func RunTheorem11(g *graph.Graph, d, c int, seed uint64) Theorem11Result {
	return RunTheorem11On(g, d, c, nil, seed)
}

// RunTheorem11On is RunTheorem11 over an adversarial channel
// (nil = ideal).
func RunTheorem11On(g *graph.Graph, d, c int, ch radio.Channel, seed uint64) Theorem11Result {
	cfg := rings.DefaultConfig(g.N(), d, 0, c)
	nw := radio.New(g, radio.Config{CollisionDetection: true, Channel: ch})
	protos := make([]*rings.Protocol, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = rings.New(cfg, graph.NodeID(v), v == 0, nil, rng.New(seed, 0x11, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	rounds, ok := nw.RunUntil(cfg.TotalRounds(), func() bool {
		for _, p := range protos {
			if !p.Has() {
				return false
			}
		}
		return true
	})
	return Theorem11Result{
		Completed:    ok,
		Rounds:       rounds,
		WaveRounds:   cfg.WaveRounds(),
		BuildRounds:  cfg.BuildRounds(),
		SpreadBudget: cfg.SpreadRounds(),
		TotalBudget:  cfg.TotalRounds(),
		Rings:        cfg.Rings(),
		Width:        cfg.W,
		Stats:        nw.Stats(),
	}
}

// RunGSTMulti measures the Theorem 1.2 k-message broadcast (known
// topology, RLNC atop the MMV schedule). Verifies decoded payloads.
func RunGSTMulti(g *graph.Graph, k int, seed uint64, limit int64) (int64, bool) {
	rounds, ok, _ := RunGSTMultiOn(g, k, nil, seed, limit)
	return rounds, ok
}

// RunGSTMultiOn is RunGSTMulti over an adversarial channel
// (nil = ideal).
func RunGSTMultiOn(g *graph.Graph, k int, ch radio.Channel, seed uint64, limit int64) (int64, bool, radio.Stats) {
	const l = 32
	r := rng.New(seed, 0x12)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(l, r.Uint64)
	}
	tree := gst.Construct(g, 0)
	infos := mmv.InfoFromTree(tree)
	s := mmv.NewSchedule(g.N())
	nw := radio.New(g, radio.Config{Channel: ch})
	contents := make([]*mmv.RLNC, g.N())
	for v := 0; v < g.N(); v++ {
		var buf *rlnc.Buffer
		if v == 0 {
			buf = rlnc.NewSourceBuffer(0, msgs, l)
		} else {
			buf = rlnc.NewBuffer(0, k, l)
		}
		contents[v] = mmv.NewRLNC(buf, rng.New(seed, 0x13, uint64(v)))
		nw.SetProtocol(graph.NodeID(v),
			mmv.New(s, infos[v], contents[v], false, rng.New(seed, 0x14, uint64(v))))
	}
	rounds, ok := nw.RunUntil(limit, func() bool {
		for _, c := range contents {
			if !c.Done() {
				return false
			}
		}
		return true
	})
	st := nw.Stats()
	if !ok {
		return rounds, false, st
	}
	for _, c := range contents {
		got, dok := c.Buffer().Decode()
		if !dok {
			return rounds, false, st
		}
		for i := range msgs {
			if !bitvec.Equal(got[i], msgs[i]) {
				return rounds, false, st
			}
		}
	}
	return rounds, true, st
}

// RunTheorem13 executes the full Theorem 1.3 pipeline.
func RunTheorem13(g *graph.Graph, d, k, c int, seed uint64) (rounds int64, completed bool, cfg rings.Config) {
	rounds, completed, cfg, _ = RunTheorem13On(g, d, k, c, nil, seed)
	return rounds, completed, cfg
}

// RunTheorem13On is RunTheorem13 over an adversarial channel
// (nil = ideal).
func RunTheorem13On(g *graph.Graph, d, k, c int, ch radio.Channel, seed uint64) (rounds int64, completed bool, cfg rings.Config, st radio.Stats) {
	cfg = rings.DefaultConfig(g.N(), d, k, c)
	r := rng.New(seed, 0x15)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = bitvec.RandomVec(cfg.PayloadBits, r.Uint64)
	}
	nw := radio.New(g, radio.Config{CollisionDetection: true, Channel: ch})
	protos := make([]*rings.Protocol, g.N())
	for v := 0; v < g.N(); v++ {
		var m []rlnc.Message
		if v == 0 {
			m = msgs
		}
		protos[v] = rings.New(cfg, graph.NodeID(v), v == 0, m, rng.New(seed, 0x16, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	rounds, completed = nw.RunUntil(cfg.TotalRounds(), func() bool {
		for _, p := range protos {
			if !p.Store().CanDecodeAll() {
				return false
			}
		}
		return true
	})
	return rounds, completed, cfg, nw.Stats()
}

// PlainPacket is an uncoded message for the routing baseline of A2.
type PlainPacket struct {
	Index   int32
	Payload int64
}

// Bits implements radio.Packet.
func (PlainPacket) Bits() int { return 96 }

// PlainStore is the store-and-forward content layer (no coding): when
// prompted, the node sends a uniformly random message it holds. Held
// messages live in an insertion-ordered slice — never a map — so the
// random pick consumes the RNG deterministically (map iteration order
// would make reruns diverge).
type PlainStore struct {
	K   int
	Rng interface{ Intn(int) int }

	order   []int32
	payload map[int32]int64
}

// NewPlainStore creates a store for k messages; source nodes call Put
// to seed their initial inventory.
func NewPlainStore(k int, rng interface{ Intn(int) int }) *PlainStore {
	return &PlainStore{K: k, Rng: rng, payload: make(map[int32]int64)}
}

// Put records a message if it is new.
func (ps *PlainStore) Put(index int32, payload int64) {
	if ps.payload == nil {
		ps.payload = make(map[int32]int64)
	}
	if _, ok := ps.payload[index]; ok {
		return
	}
	ps.payload[index] = payload
	ps.order = append(ps.order, index)
}

var _ mmv.Content = (*PlainStore)(nil)

// Fresh implements mmv.Content.
func (ps *PlainStore) Fresh() radio.Packet {
	if len(ps.order) == 0 {
		return nil
	}
	idx := ps.order[ps.Rng.Intn(len(ps.order))]
	return PlainPacket{Index: idx, Payload: ps.payload[idx]}
}

// OnReceive implements mmv.Content.
func (ps *PlainStore) OnReceive(pkt radio.Packet, _ radio.NodeID) {
	if p, ok := pkt.(PlainPacket); ok {
		ps.Put(p.Index, p.Payload)
	}
}

// Done implements mmv.Content.
func (ps *PlainStore) Done() bool { return len(ps.order) == ps.K }

// RunGSTMultiRouting is the A2 baseline: k messages with plain
// store-and-forward routing on the same schedule.
func RunGSTMultiRouting(g *graph.Graph, k int, seed uint64, limit int64) (int64, bool) {
	tree := gst.Construct(g, 0)
	infos := mmv.InfoFromTree(tree)
	s := mmv.NewSchedule(g.N())
	nw := radio.New(g, radio.Config{})
	contents := make([]*PlainStore, g.N())
	for v := 0; v < g.N(); v++ {
		contents[v] = NewPlainStore(k, rng.New(seed, 0x17, uint64(v)))
		if v == 0 {
			for i := 0; i < k; i++ {
				contents[v].Put(int32(i), int64(1000+i))
			}
		}
		nw.SetProtocol(graph.NodeID(v),
			mmv.New(s, infos[v], contents[v], false, rng.New(seed, 0x18, uint64(v))))
	}
	return nw.RunUntil(limit, func() bool {
		for _, c := range contents {
			if !c.Done() {
				return false
			}
		}
		return true
	})
}
