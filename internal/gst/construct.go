package gst

import (
	"sort"

	"radiocast/internal/graph"
)

// Construct builds a GST of g rooted at the given roots, centrally
// (the known-topology setting). It processes level boundaries bottom-up
// and, within each boundary, ranks in decreasing order, mirroring the
// structure of the distributed algorithm of Section 2.2.3 but with the
// randomized epochs replaced by a deterministic greedy:
//
//	step 1: while some red (level l-1) node has ≥ 2 unassigned rank-i
//	        blue (level l) neighbors, adopt them all (the red will get
//	        rank ≥ i+1, so it never constrains rank-i collision
//	        freeness);
//	step 2: every remaining rank-i blue has pairwise non-adjacent
//	        candidate parents (each red now has ≤ 1 unassigned rank-i
//	        neighbor), so assigning each to any neighbor red yields an
//	        induced matching among same-rank pairs.
//
// The result satisfies all GST invariants (Tree.Validate).
func Construct(g *graph.Graph, roots ...NodeID) *Tree {
	t := NewTree(g, roots)
	bfs := graph.BFS(g, roots...)
	for v := 0; v < g.N(); v++ {
		t.Level[v] = bfs.Dist[v]
	}
	maxLevel := bfs.MaxDist
	byLevel := make([][]NodeID, maxLevel+1)
	for v := 0; v < g.N(); v++ {
		if l := t.Level[v]; l >= 0 {
			byLevel[l] = append(byLevel[l], NodeID(v))
		}
	}
	// Bottom-up: assign parents for level l from level l-1.
	for l := maxLevel; l >= 1; l-- {
		assignBoundary(t, byLevel[l])
	}
	t.ComputeRanks()
	return t
}

// assignBoundary solves the bipartite assignment problem for the blues
// (level-l nodes); their ranks are already final because all deeper
// levels are assigned. Reds are their level-(l-1) neighbors.
func assignBoundary(t *Tree, blues []NodeID) {
	if len(blues) == 0 {
		return
	}
	// Blues' ranks are determined by their (already assigned) children.
	children := t.Children()
	rankOf := make(map[NodeID]int32, len(blues))
	var maxRank int32 = 1
	for _, u := range blues {
		r := rankFromChildren(t.Rank, children[u])
		rankOf[u] = r
		t.Rank[u] = r // provisional; ComputeRanks recomputes identically
		if r > maxRank {
			maxRank = r
		}
	}
	for r := maxRank; r >= 1; r-- {
		assignRank(t, blues, rankOf, r)
	}
}

// assignRank assigns parents to all rank-r blues.
func assignRank(t *Tree, blues []NodeID, rankOf map[NodeID]int32, r int32) {
	unassigned := make(map[NodeID]bool)
	for _, u := range blues {
		if rankOf[u] == r && t.Parent[u] < 0 {
			unassigned[u] = true
		}
	}
	if len(unassigned) == 0 {
		return
	}
	// Candidate reds: level l-1 neighbors of the unassigned blues.
	// count[v] = number of unassigned rank-r blue neighbors of red v.
	count := make(map[NodeID]int)
	redsOf := func(u NodeID) []NodeID {
		var out []NodeID
		for _, w := range t.G.Neighbors(u) {
			if t.InTree(w) && t.Level[w] == t.Level[u]-1 {
				out = append(out, w)
			}
		}
		return out
	}
	for u := range unassigned {
		for _, v := range redsOf(u) {
			count[v]++
		}
	}
	// Step 1: adopt-all for reds with >= 2 unassigned neighbors.
	// Deterministic order for reproducibility.
	queue := make([]NodeID, 0, len(count))
	for v := range count {
		queue = append(queue, v)
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	// Counts only ever decrease, so a single pass suffices: a red whose
	// count is below 2 when visited can never grow back above it.
	for _, v := range queue {
		if count[v] < 2 {
			continue
		}
		// Adopt all currently unassigned rank-r neighbors of v.
		for _, u := range t.G.Neighbors(v) {
			if !unassigned[u] {
				continue
			}
			t.Parent[u] = v
			delete(unassigned, u)
			for _, w := range redsOf(u) {
				count[w]--
			}
		}
	}
	// Step 2: every red now has <= 1 unassigned rank-r neighbor; give
	// each remaining blue its smallest red neighbor.
	remaining := make([]NodeID, 0, len(unassigned))
	for u := range unassigned {
		remaining = append(remaining, u)
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })
	for _, u := range remaining {
		reds := redsOf(u)
		if len(reds) == 0 {
			continue // disconnected from upper level: impossible for BFS members
		}
		t.Parent[u] = reds[0]
	}
}

// NaiveRankedBFS builds a plain ranked BFS tree (each node's parent is
// its smallest-id neighbor one level up) without enforcing collision-
// freeness. Figure 1's left side: such trees generally violate the GST
// property, which ValidateCollisionFreeness detects.
func NaiveRankedBFS(g *graph.Graph, roots ...NodeID) *Tree {
	t := NewTree(g, roots)
	bfs := graph.BFS(g, roots...)
	for v := 0; v < g.N(); v++ {
		t.Level[v] = bfs.Dist[v]
		t.Parent[v] = bfs.Parent[v]
	}
	// BFS.Parent already picks the first-discovered neighbor; normalize
	// to smallest-id upper neighbor for determinism.
	for v := 0; v < g.N(); v++ {
		if t.Level[v] <= 0 {
			t.Parent[v] = -1
			continue
		}
		for _, u := range g.Neighbors(NodeID(v)) {
			if t.Level[u] == t.Level[v]-1 {
				t.Parent[v] = u
				break // neighbors are sorted: smallest id
			}
		}
	}
	t.ComputeRanks()
	return t
}
