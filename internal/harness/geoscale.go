package harness

// E22/E23: the geometric workloads. E22 is the static geometric scale
// sweep — the dense protocol catalog on unit-disk graphs over seeded
// point layouts (uniform at the connectivity radius, clustered blobs,
// and the quasi-unit-disk band driven by channel.RangeErasure) up to
// n = 10^6, through the same streaming-CSR path as E19/E20. E23 is
// the mobility/churn trial: a collision wave on an initially
// disconnected clustered layout whose nodes walk random waypoints,
// with topology re-derived (geo.NewDisk + Retopo) every T rounds —
// comparing the one-shot schedule (one wave, then silence: the
// spatial analog of E16's abandoned late-waking radio) against
// adaptive informed-set carryover re-launching the wave each period.

import (
	"fmt"

	"radiocast/internal/adapt"
	"radiocast/internal/channel"
	"radiocast/internal/exp"
	"radiocast/internal/geo"
	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
	"radiocast/internal/stats"
)

// e22Seed keys every E22 layout, so all protocol cells of one
// (workload, n) measure the same geometry (the E19 idiom).
const e22Seed = 0xe22

// e22Workloads orders the workload rows of E22.
var e22Workloads = []string{"udg", "udg-cluster", "qudg"}

// e22GeoCap bounds the clustered and quasi-unit-disk workloads at
// 10^5: the QUDG band rides the engine's channel-adverse path (O(n)
// per round), and the clustered blobs are near-cliques whose edge
// count grows superlinearly. Only the plain unit-disk workload runs
// to 10^6.
const e22GeoCap = 100_000

// e22QUDGBand stretches the QUDG outer radius to 1.6x the reliable
// radius — every band link exists in the CSR and RangeErasure decides
// per round whether the fringe delivery happens.
const e22QUDGBand = 1.6

// e22Graph builds one geometric workload at size n, returning the
// channel that completes it (nil except for the qudg band). All three
// stitch components via BuildConnected so the randomized broadcasts
// can complete; at the connectivity radius the stitch is almost
// always empty.
func e22Graph(workload string, n int, seed uint64) (*graph.Graph, radio.Channel) {
	rc := geo.ConnectivityRadius(n)
	switch workload {
	case "udg-cluster":
		// sqrt(n) blobs of sqrt(n) nodes, blob box ~ the radius: dense
		// near-cliques stitched into a sparse macro-graph — the
		// geometric rendition of the cluster-chain workload.
		clusters := 1
		for clusters*clusters < n {
			clusters++
		}
		l := geo.Clustered(n, clusters, rc, e22Seed)
		return graph.BuildConnected(geo.NewDisk(l, rc), e22Seed), nil
	case "qudg":
		l := geo.Uniform(n, e22Seed)
		outer := e22QUDGBand * rc
		g := graph.BuildConnected(geo.NewDisk(l, outer), e22Seed)
		return g, channel.NewRangeErasure(l.X, l.Y, rc, outer, rng.Mix(seed, 0xe22))
	default: // "udg"
		l := geo.Uniform(n, e22Seed)
		return graph.BuildConnected(geo.NewDisk(l, rc), e22Seed), nil
	}
}

// runGeoCell is runScaleCell over a geometric workload: build the
// layout + disk CSR inside the heap bracket, then hand off to the
// shared dense protocol-switch body.
func runGeoCell(proto, workload string, n int, seed uint64, workers int, limit int64) (exp.Result, float64) {
	before := liveHeap()
	g, ch := e22Graph(workload, n, seed)
	cfg := radio.Config{Workers: workers, Channel: ch}
	return runDenseCell(g, proto, seed, cfg, before, limit)
}

// E22Plan is the geometric scale sweep: the dense SoA catalog on
// unit-disk workloads, n = 10^3 .. sc.MaxN (udg only; the clustered
// and band workloads cap at 10^5). The qudg rows run under
// channel.RangeErasure — reliable inside the connectivity radius,
// distance-ramped erasure across the band — so they exercise the
// adverse engine path exactly like E20's flat erasure, but with loss
// that is a function of geometry instead of a single rate.
func E22Plan(sc ScaleConfig, seeds int, quick bool) *exp.Plan {
	sizes := []int{1_000, 10_000, 100_000, 1_000_000}
	if quick {
		sizes = []int{1_000, 10_000}
	}
	maxN := sc.maxN()
	workers := sc.workers()
	p := &exp.Plan{ID: "E22", Title: "Geometric scale sweep: dense catalog on unit-disk layouts (udg/cluster/qudg)"}
	type cfg struct {
		workload string
		n        int
	}
	var cfgs []cfg
	for _, n := range sizes {
		if n > maxN {
			continue
		}
		for _, w := range e22Workloads {
			if w != "udg" && n > e22GeoCap {
				continue
			}
			cfgs = append(cfgs, cfg{w, n})
		}
	}
	key := func(proto string, c cfg, s uint64) exp.Key {
		return exp.Key{Experiment: "E22", Config: fmt.Sprintf("%s/%s/n=%d", proto, c.workload, c.n), Seed: s}
	}
	for _, c := range cfgs {
		for _, proto := range e19Protocols {
			for s := 0; s < seeds; s++ {
				c, proto, seed := c, proto, uint64(s)
				cost := budgetCost(c.n, e19Rounds(proto, "grid", c.n))
				if c.workload == "qudg" {
					cost *= 2 // adverse path: O(n)-per-round listener sweep
				}
				p.Cells = append(p.Cells, exp.Cell{
					Key:        key(proto, c, seed),
					RoundLimit: broadcastLimit,
					Cost:       cost,
					Run: func(limit int64) exp.Result {
						res, _ := runGeoCell(proto, c.workload, c.n, seed, workers, limit)
						return res
					},
				})
			}
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			// Worker count stays out of the title (CI byte-compares the
			// sequential and parallel sweeps).
			Title: "E22: geometric scale sweep (unit-disk layouts, streaming CSR)",
			Comment: "one dense broadcast per (protocol, workload, n) cell over seeded point layouts: udg at the\n" +
				"connectivity radius, udg-cluster blobs, qudg with distance-ramped band erasure (RangeErasure);\n" +
				"byte-identical at any worker count; bytes/node, peak RSS, rounds/sec ride the JSON artifact",
			Header: []string{"workload", "n", "ok", "decay", "cr", "wave"},
		}
		for _, c := range cfgs {
			okCount := 0
			row := []string{c.workload, fmt.Sprintf("%d", c.n), ""}
			for _, proto := range e19Protocols {
				var rs []float64
				for s := 0; s < seeds; s++ {
					r := idx[key(proto, c, uint64(s))]
					if r.Completed {
						okCount++
						rs = append(rs, float64(r.Rounds))
					}
				}
				row = append(row, stats.F(meanOrDash(rs)))
			}
			row[2] = fmt.Sprintf("%d/%d", okCount, len(e19Protocols)*seeds)
			t.AddRow(row...)
		}
		return t
	}
	return p
}

// E23 parameters: six blobs of n/6 nodes, blob box 0.04 against a
// radio range of 0.06 — each blob is internally near-complete and the
// blobs start mutually disconnected. Nodes walk random waypoints at
// 0.002/round, so over the 2048-round timeline each node travels ~4
// unit lengths and the blob structure fully dissolves (into a
// supercritical but sub-connectivity-threshold soup: coverage, not
// completion, is the measured quantity).
const (
	e23N        = 600
	e23Clusters = 6
	e23Spread   = 0.04
	e23Radius   = 0.06
	e23Speed    = 0.002
	e23Total    = 2048
)

// e23Modes orders the mode columns of E23.
var e23Modes = []string{"oneshot", "adaptive"}

// E23Plan is the mobility/churn trial: a collision wave on a
// clustered layout re-derived every T rounds. The oneshot arm runs
// the wave once with a T-round horizon and then the network is silent
// while the nodes keep moving — coverage frozen at the source's blob.
// The adaptive arm re-launches the wave every period from the carried
// informed set, on the topology as of that period (waypoint advance +
// geo.NewDisk + Retopo through the relayout hook), so radios that
// drift into range of an informed one are recovered. Both arms are
// identical through the first period; everything after is what the
// carryover buys.
func E23Plan(seeds int, quick bool) *exp.Plan {
	periods := []int64{64, 128, 256, 512}
	total := int64(e23Total)
	if quick {
		periods = []int64{64, 256}
		total = 1024
	}
	p := &exp.Plan{ID: "E23", Title: "Mobility/churn: oneshot vs adaptive wave coverage across re-layout periods"}
	type cfg struct {
		mode   string
		period int64
	}
	var cfgs []cfg
	for _, period := range periods {
		for _, mode := range e23Modes {
			cfgs = append(cfgs, cfg{mode, period})
		}
	}
	key := func(c cfg, s uint64) exp.Key {
		return exp.Key{Experiment: "E23", Config: fmt.Sprintf("%s/T=%d", c.mode, c.period), Seed: s}
	}
	for _, c := range cfgs {
		for s := 0; s < seeds; s++ {
			c, seed := c, uint64(s)
			p.Cells = append(p.Cells, exp.Cell{
				Key:        key(c, seed),
				RoundLimit: total,
				Cost:       budgetCost(e23N, total),
				Run: func(limit int64) exp.Result {
					return runE23Cell(c.mode, c.period, total, seed, limit)
				},
			})
		}
	}
	p.Assemble = func(results []exp.Result) *stats.Table {
		idx := exp.Index(results)
		t := &stats.Table{
			Title: "E23: mobility/churn — oneshot vs adaptive wave coverage under re-layout",
			Comment: "clustered layout (6 blobs, mutually disconnected at t=0), random-waypoint motion, topology\n" +
				"re-derived every T rounds (Retopo); oneshot = one T-round wave then silence, adaptive =\n" +
				"informed-set carryover re-launching the wave each period on the period's topology",
			Header: []string{"T", "mode", "coverage", "epochs", "rounds"},
		}
		for _, c := range cfgs {
			var cov, eps, rs []float64
			for s := 0; s < seeds; s++ {
				r := idx[key(c, uint64(s))]
				cov = append(cov, r.Value)
				eps = append(eps, float64(r.Epochs))
				rs = append(rs, float64(r.Rounds))
			}
			t.AddRow(fmt.Sprintf("%d", c.period), c.mode,
				stats.F(meanOrDash(cov)), stats.F(meanOrDash(eps)), stats.F(meanOrDash(rs)))
		}
		return t
	}
	return p
}

// runE23Cell executes one mobility cell. Randomness enters only
// through the layout and waypoint seeds — the wave itself draws
// nothing.
func runE23Cell(mode string, period, total int64, seed uint64, limit int64) exp.Result {
	if total > limit && limit > 0 {
		total = limit
	}
	l := geo.Clustered(e23N, e23Clusters, e23Spread, rng.Mix(0xe23, seed))
	g := graph.FromStream(geo.NewDisk(l, e23Radius))
	if mode == "oneshot" {
		wr := NewWaveRun(g, 0, period)
		rounds, ok, _ := wr.Run(nil, seed, period)
		res := exp.Rounds(rounds, ok)
		res.Epochs = 1
		res.Covered = wr.Coverage()
		res.Value = float64(wr.Coverage()) / float64(e23N)
		return res
	}
	wp := geo.NewWaypoint(l, e23Speed, rng.Mix(0xe23, seed, 1))
	ar := NewAdaptiveWave(g, nil, seed, 0, period)
	ar.SetRelayout(func(epoch int) {
		wp.Advance(int(period))
		ng := graph.FromStream(geo.NewDisk(l, e23Radius))
		off, edges := ng.CSR()
		ar.Retopo(off, edges)
	})
	out := adapt.Run(ar, adapt.Policy{MaxEpochs: int(total / period), EpochLimit: period})
	res := exp.Rounds(out.Rounds, out.Completed)
	res.Epochs = out.Epochs
	res.Covered = out.Covered
	res.Value = float64(out.Covered) / float64(e23N)
	return res
}
