package radio

// DoneSet is an O(1) completion counter shared between a harness
// runner and the per-node protocol (or content) layers. Instead of the
// runner scanning all n nodes after every executed round ("is every
// node done yet?" — an O(n·R) predicate over a run of R rounds), each
// node ticks the set exactly once, at the moment it first completes,
// and the runner's RunUntil predicate reduces to one integer compare.
//
// Contract:
//
//   - The runner calls Reset(n) after constructing (or resetting) the
//     protocol stack, then performs one O(n) scan ticking every node
//     that *starts* completed (sources). From then on, protocols tick
//     only on a not-done -> done transition inside Observe/OnReceive/
//     Add, so every node contributes exactly one tick.
//   - A nil *DoneSet is legal everywhere a protocol holds one: ticking
//     nil is a no-op, keeping the hook optional for callers that still
//     use scanning predicates.
type DoneSet struct {
	done   int
	target int
}

// NewDoneSet returns a set expecting target completions.
func NewDoneSet(target int) *DoneSet {
	return &DoneSet{target: target}
}

// Reset rewinds the counter for a new run over target nodes.
func (d *DoneSet) Reset(target int) {
	d.done = 0
	d.target = target
}

// Tick records one node's first completion. Ticking a nil set is a
// no-op.
func (d *DoneSet) Tick() {
	if d != nil {
		d.done++
	}
}

// Done reports whether every expected node has completed.
func (d *DoneSet) Done() bool { return d.done >= d.target }

// Count returns the completions recorded so far.
func (d *DoneSet) Count() int { return d.done }

// Target returns the expected completion count.
func (d *DoneSet) Target() int { return d.target }
