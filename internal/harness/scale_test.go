package harness

import (
	"testing"

	"radiocast/internal/exp"
)

// TestE19QuickCompletes runs the quick scale sweep (n up to 10^4) and
// requires every cell to finish its broadcast and carry the capacity
// metrics.
func TestE19QuickCompletes(t *testing.T) {
	p := E19Plan(1, true)
	results := (&exp.Runner{Parallelism: 1}).Run(p)
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Key, r.Err)
		}
		if !r.Completed {
			t.Errorf("%s: broadcast incomplete after %d rounds", r.Key, r.Rounds)
		}
		if r.MemBytes < 0 || r.Value <= 0 {
			t.Errorf("%s: implausible metrics mem=%d deliveries=%g", r.Key, r.MemBytes, r.Value)
		}
	}
	if tb := p.Assemble(results); len(tb.Rows) == 0 {
		t.Fatal("E19 produced no rows")
	}
}

// TestE19WorkerInvariance pins the sweep-level face of the dense
// engine's determinism contract: the E19 table (and the canonical
// artifact) is byte-identical whether the engine runs sequentially or
// with the parallel delivery pass.
func TestE19WorkerInvariance(t *testing.T) {
	defer func(w int) { E19Workers = w }(E19Workers)
	run := func(workers int) string {
		E19Workers = workers
		p := E19Plan(1, true)
		tb, _ := (&exp.Runner{Parallelism: 1}).RunTable(p)
		return tb.String()
	}
	seq := run(1)
	par := run(4)
	if seq != par {
		t.Fatalf("E19 tables diverge across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
}
