// Package bitvec implements dense bit vectors and incremental Gaussian
// elimination over GF(2).
//
// It is the algebraic substrate for random linear network coding
// (Section 3.3.1 of the paper): coefficient vectors live in F_2^k,
// payloads in F_2^l, and decoding is solving a linear system over F_2.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a bit vector over GF(2). The zero value is an empty vector.
// Vectors of different lengths must not be mixed in binary operations.
type Vec struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of n bits.
func New(n int) Vec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBits builds a vector from a slice of booleans.
func FromBits(bits []bool) Vec {
	v := New(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i)
		}
	}
	return v
}

// Unit returns the length-n vector with exactly bit i set.
func Unit(n, i int) Vec {
	v := New(n)
	v.Set(i)
	return v
}

// Len returns the number of bits.
func (v Vec) Len() int { return v.n }

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool {
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to 1.
func (v Vec) Set(i int) { v.words[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Clear sets bit i to 0.
func (v Vec) Clear(i int) { v.words[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Flip toggles bit i.
func (v Vec) Flip(i int) { v.words[i/wordBits] ^= 1 << (uint(i) % wordBits) }

// Zero clears every bit in place (no allocation).
func (v Vec) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Ones sets every bit in place (no allocation), preserving the
// tail-zero invariant of the last word.
func (v Vec) Ones() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// Words exposes the backing word storage: bit j of word i is bit
// 64·i+j of the vector, and bits at or beyond Len in the last word are
// always zero. Callers may read and write words directly — this is the
// word-level seam the dense engine's informed/frontier/transmitter
// bitsets build on — but writes must preserve the tail-zero invariant
// (use Ones/Zero for whole-vector fills).
func (v Vec) Words() []uint64 { return v.words }

// IsZero reports whether every bit is 0.
func (v Vec) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v Vec) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v's bits with u's. Panics if lengths differ.
// Unlike Clone it performs no allocation, so hot paths can reuse a
// scratch vector across operations.
func (v Vec) CopyFrom(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, u.n))
	}
	copy(v.words, u.words)
}

// XorInPlace adds (XORs) u into v. Panics if lengths differ.
func (v Vec) XorInPlace(u Vec) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, u.n))
	}
	for i, w := range u.words {
		v.words[i] ^= w
	}
}

// Xor returns v + u over GF(2) as a fresh vector.
func Xor(v, u Vec) Vec {
	out := v.Clone()
	out.XorInPlace(u)
	return out
}

// Dot returns the GF(2) inner product <v, u> (parity of AND).
func Dot(v, u Vec) bool {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, u.n))
	}
	parity := 0
	for i, w := range u.words {
		parity ^= bits.OnesCount64(v.words[i]&w) & 1
	}
	return parity == 1
}

// Equal reports whether v and u have identical length and bits.
func Equal(v, u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i, w := range u.words {
		if v.words[i] != w {
			return false
		}
	}
	return true
}

// LowestSetBit returns the index of the least-significant set bit, or
// -1 if the vector is zero.
func (v Vec) LowestSetBit() int {
	for i, w := range v.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextSetBit returns the index of the first set bit at position >= from,
// or -1 if there is none.
func (v Vec) NextSetBit(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	i := from / wordBits
	w := v.words[i] &^ ((1 << (uint(from) % wordBits)) - 1)
	for {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
		i++
		if i >= len(v.words) {
			return -1
		}
		w = v.words[i]
	}
}

// String renders the vector as a bit string, index 0 leftmost.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// RandomVec returns a uniformly random length-n vector drawn from next,
// a source of uniform uint64s (e.g. (*rand.Rand).Uint64).
func RandomVec(n int, next func() uint64) Vec {
	v := New(n)
	v.Randomize(next)
	return v
}

// Randomize overwrites v with uniformly random bits drawn from next —
// the in-place, allocation-free counterpart of RandomVec (identical
// draws: one uint64 per word).
func (v Vec) Randomize(next func() uint64) {
	for i := range v.words {
		v.words[i] = next()
	}
	v.trim()
}

// RandomNonZeroVec returns a uniformly random non-zero length-n vector.
// Panics if n == 0 (there is no non-zero vector of length 0).
func RandomNonZeroVec(n int, next func() uint64) Vec {
	if n == 0 {
		panic("bitvec: no non-zero vector of length 0")
	}
	for {
		v := RandomVec(n, next)
		if !v.IsZero() {
			return v
		}
	}
}

// trim zeroes any bits beyond n in the last word, keeping invariants
// for PopCount/IsZero/Equal.
func (v Vec) trim() {
	if v.n%wordBits == 0 || len(v.words) == 0 {
		return
	}
	last := len(v.words) - 1
	v.words[last] &= (1 << (uint(v.n) % wordBits)) - 1
}
