package adapt

import (
	"testing"

	"radiocast/internal/radio"
)

// fakeRunner completes after a fixed number of epochs, consuming a
// fixed round count per epoch, and records the limits it was handed.
type fakeRunner struct {
	needEpochs     int
	roundsPerEpoch int64
	target         int

	epochsRun int
	limits    []int64
}

func (f *fakeRunner) RunEpoch(epoch int, limit int64) (int64, bool, radio.Stats) {
	if epoch != f.epochsRun {
		panic("epochs out of order")
	}
	f.epochsRun++
	f.limits = append(f.limits, limit)
	done := f.epochsRun >= f.needEpochs
	st := radio.Stats{Rounds: f.roundsPerEpoch, Deliveries: 1}
	return f.roundsPerEpoch, done, st
}

func (f *fakeRunner) Covered() int {
	c := f.target * f.epochsRun / f.needEpochs
	if c > f.target {
		c = f.target
	}
	return c
}

func TestRunStopsOnCompletion(t *testing.T) {
	f := &fakeRunner{needEpochs: 3, roundsPerEpoch: 100, target: 10}
	out := Run(f, Policy{MaxEpochs: 8})
	if !out.Completed || out.Epochs != 3 || out.Rounds != 300 || out.Covered != 10 {
		t.Fatalf("outcome %+v, want completed in 3 epochs / 300 rounds", out)
	}
	if out.Stats.Deliveries != 3 || out.Stats.Rounds != 300 {
		t.Fatalf("stats not aggregated: %+v", out.Stats)
	}
}

func TestRunRespectsFixedEpochBudget(t *testing.T) {
	f := &fakeRunner{needEpochs: 10, roundsPerEpoch: 50, target: 10}
	out := Run(f, Policy{MaxEpochs: 4})
	if out.Completed || out.Epochs != 4 || out.Rounds != 200 {
		t.Fatalf("outcome %+v, want incomplete after exactly 4 epochs", out)
	}
	if out.Covered != 4 {
		t.Fatalf("covered %d, want the runner's partial count 4", out.Covered)
	}
}

func TestRunUntilDoneCap(t *testing.T) {
	f := &fakeRunner{needEpochs: UntilDoneCap + 10, roundsPerEpoch: 1, target: 2}
	out := Run(f, Policy{})
	if out.Completed || out.Epochs != UntilDoneCap {
		t.Fatalf("outcome %+v, want the until-done policy capped at %d epochs", out, UntilDoneCap)
	}
}

func TestRunDoublingHorizon(t *testing.T) {
	f := &fakeRunner{needEpochs: 4, roundsPerEpoch: 10, target: 2}
	Run(f, Policy{MaxEpochs: 4, EpochLimit: 100, Doubling: true})
	want := []int64{100, 200, 400, 800}
	for i, l := range f.limits {
		if l != want[i] {
			t.Fatalf("epoch %d limit %d, want %d (limits %v)", i, l, want[i], f.limits)
		}
	}
	// Doubling without an explicit limit is inert: the stack budget (0)
	// is passed through unchanged.
	f2 := &fakeRunner{needEpochs: 3, roundsPerEpoch: 10, target: 2}
	Run(f2, Policy{MaxEpochs: 3, Doubling: true})
	for i, l := range f2.limits {
		if l != 0 {
			t.Fatalf("epoch %d limit %d, want 0 (stack budget)", i, l)
		}
	}
}

func TestRunMaxRounds(t *testing.T) {
	f := &fakeRunner{needEpochs: 100, roundsPerEpoch: 100, target: 2}
	out := Run(f, Policy{MaxRounds: 250})
	if out.Completed || out.Epochs != 3 {
		t.Fatalf("outcome %+v, want stop after the epoch crossing 250 total rounds", out)
	}
	// MaxRounds is a hard cap: each epoch is handed only the remaining
	// budget (the fake ignores it; real runners honor it).
	want := []int64{250, 150, 50}
	for i, l := range f.limits {
		if l != want[i] {
			t.Fatalf("epoch %d limit %d, want %d (limits %v)", i, l, want[i], f.limits)
		}
	}
	// A cap smaller than EpochLimit clamps the very first epoch.
	f2 := &fakeRunner{needEpochs: 5, roundsPerEpoch: 10, target: 2}
	Run(f2, Policy{MaxEpochs: 1, EpochLimit: 1000, MaxRounds: 30})
	if f2.limits[0] != 30 {
		t.Fatalf("epoch 0 limit %d, want the 30-round cap below EpochLimit 1000", f2.limits[0])
	}
}

func TestRunAlwaysExecutesOneEpoch(t *testing.T) {
	f := &fakeRunner{needEpochs: 1, roundsPerEpoch: 7, target: 3}
	out := Run(f, Policy{MaxEpochs: 1})
	if !out.Completed || out.Epochs != 1 || out.Rounds != 7 {
		t.Fatalf("outcome %+v, want one completed epoch", out)
	}
}
