package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasisUnitVectorsReachFull(t *testing.T) {
	const n = 40
	b := NewBasis(n)
	for i := 0; i < n; i++ {
		if b.Full() {
			t.Fatalf("full after %d insertions", i)
		}
		if !b.Add(Unit(n, i)) {
			t.Fatalf("unit vector %d reported dependent", i)
		}
	}
	if !b.Full() || b.Rank() != n {
		t.Fatalf("rank = %d, want %d", b.Rank(), n)
	}
}

func TestBasisRejectsDependent(t *testing.T) {
	b := NewBasis(8)
	v1 := Unit(8, 0)
	v2 := Unit(8, 1)
	sum := Xor(v1, v2)
	if !b.Add(v1) || !b.Add(v2) {
		t.Fatal("independent vectors rejected")
	}
	if b.Add(sum) {
		t.Fatal("dependent vector accepted")
	}
	if !b.InSpan(sum) {
		t.Fatal("sum not in span")
	}
	if b.Add(Vec(New(8))) {
		t.Fatal("zero vector increased rank")
	}
}

func TestBasisRankMatchesBatchRank(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		count := r.Intn(2 * n)
		vs := make([]Vec, count)
		b := NewBasis(n)
		incRank := 0
		for i := range vs {
			vs[i] = RandomVec(n, r.Uint64)
			if b.Add(vs[i]) {
				incRank++
			}
		}
		return incRank == Rank(vs) && b.Rank() == incRank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBasisSpanClosure(t *testing.T) {
	// Any XOR combination of inserted vectors must be in the span.
	r := rand.New(rand.NewSource(99))
	const n = 33
	b := NewBasis(n)
	var inserted []Vec
	for i := 0; i < 20; i++ {
		v := RandomVec(n, r.Uint64)
		b.Add(v)
		inserted = append(inserted, v)
	}
	for trial := 0; trial < 50; trial++ {
		comb := New(n)
		for _, v := range inserted {
			if r.Intn(2) == 1 {
				comb.XorInPlace(v)
			}
		}
		if !b.InSpan(comb) {
			t.Fatal("combination of inserted vectors not in span")
		}
	}
}

func TestBasisRowsAreReduced(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n = 24
	b := NewBasis(n)
	for i := 0; i < 40; i++ {
		b.Add(RandomVec(n, r.Uint64))
	}
	// Reduced row echelon: each pivot column appears in exactly one row.
	rows := b.Rows()
	for p := 0; p < n; p++ {
		if _, ok := b.Row(p); !ok {
			continue
		}
		seen := 0
		for _, row := range rows {
			if row.Get(p) {
				seen++
			}
		}
		if seen != 1 {
			t.Fatalf("pivot column %d appears in %d rows", p, seen)
		}
	}
}

func TestSolverDecodesRandomSystem(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(24)
		m := 1 + r.Intn(48)
		// Ground-truth messages.
		msgs := make([]Vec, k)
		for i := range msgs {
			msgs[i] = RandomVec(m, r.Uint64)
		}
		s := NewSolver(k, m)
		// Feed random combinations until solvable (with a cap).
		for tries := 0; tries < 20*k+50 && !s.CanSolve(); tries++ {
			coeff := RandomVec(k, r.Uint64)
			payload := New(m)
			for i := 0; i < k; i++ {
				if coeff.Get(i) {
					payload.XorInPlace(msgs[i])
				}
			}
			s.Add(coeff, payload)
		}
		if !s.CanSolve() {
			return false
		}
		got, ok := s.Solve()
		if !ok {
			return false
		}
		for i := range msgs {
			if !Equal(got[i], msgs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolverUnderdetermined(t *testing.T) {
	s := NewSolver(3, 4)
	s.Add(Unit(3, 0), New(4))
	if s.CanSolve() {
		t.Fatal("solver claims solvable with rank 1 of 3")
	}
	if _, ok := s.Solve(); ok {
		t.Fatal("Solve succeeded while underdetermined")
	}
}

func TestSolverRankNeverExceedsK(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	s := NewSolver(5, 8)
	for i := 0; i < 100; i++ {
		s.Add(RandomVec(5, r.Uint64), RandomVec(8, r.Uint64))
		if s.Rank() > 5 {
			t.Fatalf("rank %d > k", s.Rank())
		}
	}
	if !s.CanSolve() {
		t.Fatal("100 random equations did not reach full rank (prob < 2^-90)")
	}
}

func BenchmarkBasisAdd128(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	vecs := make([]Vec, 256)
	for i := range vecs {
		vecs[i] = RandomVec(128, r.Uint64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis := NewBasis(128)
		for _, v := range vecs {
			basis.Add(v)
		}
	}
}
