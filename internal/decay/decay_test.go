package decay

import (
	"fmt"
	"testing"

	"radiocast/internal/graph"
	"radiocast/internal/radio"
	"radiocast/internal/rng"
	"radiocast/internal/sched"
)

// runBroadcast runs the classic Decay broadcast on g from source 0 and
// returns (rounds until all nodes have the message, success).
func runBroadcast(g *graph.Graph, seed uint64, limit int64) (int64, bool) {
	nw := radio.New(g, radio.Config{})
	protos := make([]*Broadcast, g.N())
	for v := 0; v < g.N(); v++ {
		protos[v] = NewBroadcast(g.N(), v == 0, Message{Data: 7}, rng.New(seed, uint64(v)))
		nw.SetProtocol(graph.NodeID(v), protos[v])
	}
	return nw.RunUntil(limit, func() bool {
		for _, p := range protos {
			if !p.Has() {
				return false
			}
		}
		return true
	})
}

func TestTransmitProbSchedule(t *testing.T) {
	if TransmitProb(0) != 0.5 || TransmitProb(1) != 0.25 || TransmitProb(3) != 0.0625 {
		t.Fatal("TransmitProb wrong")
	}
}

func TestBroadcastCompletesOnFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path-64", graph.Path(64)},
		{"star-64", graph.Star(64)},
		{"grid-8x8", graph.Grid(8, 8)},
		{"clique-32", graph.Complete(32)},
		{"gnp-100", graph.GNP(100, 0.08, 5)},
		{"clusterchain-8x8", graph.ClusterChain(8, 8)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := graph.Diameter(c.g)
			l := int64(sched.LogN(c.g.N()))
			// Generous budget: 40·(D·logn + log^2 n).
			limit := 40 * (int64(d)*l + l*l)
			rounds, ok := runBroadcast(c.g, 1, limit)
			if !ok {
				t.Fatalf("broadcast incomplete after %d rounds", limit)
			}
			t.Logf("%s: D=%d rounds=%d budget=%d", c.name, d, rounds, limit)
		})
	}
}

func TestBroadcastRoundsScaleWithD(t *testing.T) {
	// On paths, Decay rounds should grow roughly linearly in D·log n.
	r256, ok := runBroadcast(graph.Path(256), 2, 1<<20)
	if !ok {
		t.Fatal("path-256 incomplete")
	}
	r64, ok := runBroadcast(graph.Path(64), 2, 1<<20)
	if !ok {
		t.Fatal("path-64 incomplete")
	}
	ratio := float64(r256) / float64(r64)
	// D grows 4x; allow [2, 9] for noise.
	if ratio < 2 || ratio > 9 {
		t.Fatalf("rounds(path-256)/rounds(path-64) = %.2f, want ~4", ratio)
	}
}

func TestDecayProgressLemma(t *testing.T) {
	// Lemma 2.2: with >=1 participating neighbor, a listener receives
	// within one phase with probability >= 1/8. Empirically across
	// degrees: success rate must be well above 1/8 per phase; we check
	// the weaker per-Θ(log n)-phases bound to keep the test stable.
	for _, deg := range []int{1, 2, 4, 16, 64} {
		deg := deg
		t.Run(fmt.Sprintf("deg-%d", deg), func(t *testing.T) {
			succ := 0
			const trials = 400
			n := deg + 2
			l := sched.LogN(n)
			for trial := 0; trial < trials; trial++ {
				g := graph.Star(deg + 1) // center 0 listens, leaves transmit
				nw := radio.New(g, radio.Config{})
				probe := &radio.Silent{}
				nw.SetProtocol(0, probe)
				for v := 1; v <= deg; v++ {
					nw.SetProtocol(graph.NodeID(v),
						NewBroadcast(n, true, Message{}, rng.New(uint64(trial), uint64(v), uint64(deg))))
				}
				nw.Run(int64(l)) // exactly one phase
				if probe.Packets > 0 {
					succ++
				}
			}
			rate := float64(succ) / trials
			if rate < 0.125 {
				t.Fatalf("per-phase success rate %.3f < 1/8 at degree %d", rate, deg)
			}
			t.Logf("degree %d: per-phase success %.3f", deg, rate)
		})
	}
}

func TestMMVDeliversUnderNoise(t *testing.T) {
	// Lemma 3.2: the level-clocked Decay schedule delivers the message
	// even when every message-less node jams its prompted slots.
	gs := []*graph.Graph{graph.Path(48), graph.Grid(6, 8), graph.ClusterChain(6, 6)}
	for _, g := range gs {
		t.Run(g.Name(), func(t *testing.T) {
			levels := graph.BFS(g, 0)
			nw := radio.New(g, radio.Config{})
			protos := make([]*MMV, g.N())
			for v := 0; v < g.N(); v++ {
				protos[v] = NewMMV(g.N(), int(levels.Dist[v]), true, Message{Data: 3}, rng.New(9, uint64(v)))
				nw.SetProtocol(graph.NodeID(v), protos[v])
			}
			d := int64(levels.MaxDist)
			l := int64(sched.LogN(g.N()))
			limit := 60 * (d*l + l*l)
			rounds, ok := nw.RunUntil(limit, func() bool {
				for _, p := range protos {
					if !p.Has() {
						return false
					}
				}
				return true
			})
			if !ok {
				t.Fatalf("MMV broadcast incomplete after %d rounds", limit)
			}
			t.Logf("%s: D=%d rounds=%d", g.Name(), d, rounds)
		})
	}
}

func TestMMVSchedulePromptsOnlyOwnParity(t *testing.T) {
	// A node at level l may transmit only in rounds ≡ l+1 (mod 3).
	p := NewMMV(64, 4, true, Message{}, rng.New(1))
	for r := int64(0); r < 300; r++ {
		act := p.Act(r)
		if act.Transmit && (r-5)%3 != 0 {
			t.Fatalf("level-4 node transmitted in round %d", r)
		}
	}
}

func TestLayeringMatchesBFS(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(32),
		graph.Grid(6, 6),
		graph.GNP(64, 0.1, 3),
		graph.ClusterChain(5, 6),
	}
	for _, g := range gs {
		t.Run(g.Name(), func(t *testing.T) {
			want := graph.BFS(g, 0)
			d := int(want.MaxDist)
			phases := EpochPhases(g.N(), 3)
			nw := radio.New(g, radio.Config{})
			protos := make([]*Layering, g.N())
			for v := 0; v < g.N(); v++ {
				protos[v] = NewLayering(g.N(), v == 0, phases, rng.New(11, uint64(v)))
				nw.SetProtocol(graph.NodeID(v), protos[v])
			}
			nw.Run(LayeringRounds(g.N(), d, phases))
			for v := 0; v < g.N(); v++ {
				if got := protos[v].Level(); got != int(want.Dist[v]) {
					t.Fatalf("node %d: level %d, want %d", v, got, want.Dist[v])
				}
			}
		})
	}
}

func TestLayeringUnreachedReportsMinusOne(t *testing.T) {
	p := NewLayering(16, false, EpochPhases(16, 2), rng.New(1))
	if p.Level() != -1 {
		t.Fatal("unreached node must report level -1")
	}
}

func BenchmarkDecayBroadcastPath256(b *testing.B) {
	g := graph.Path(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := runBroadcast(g, uint64(i), 1<<21); !ok {
			b.Fatal("incomplete")
		}
	}
}
