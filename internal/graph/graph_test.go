package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderDedupAndSymmetry(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop: ignored
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing or asymmetric")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self loop present")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPathProperties(t *testing.T) {
	g := Path(10)
	if g.N() != 10 || g.M() != 9 {
		t.Fatalf("path-10: n=%d m=%d", g.N(), g.M())
	}
	if d := Diameter(g); d != 9 {
		t.Fatalf("diameter = %d, want 9", d)
	}
	if !IsConnected(g) {
		t.Fatal("path disconnected")
	}
	res := BFS(g, 0)
	for v := 0; v < 10; v++ {
		if res.Dist[v] != int32(v) {
			t.Fatalf("dist[%d] = %d", v, res.Dist[v])
		}
	}
}

func TestCycleDiameter(t *testing.T) {
	for _, n := range []int{3, 4, 7, 10} {
		if d := Diameter(Cycle(n)); d != n/2 {
			t.Fatalf("cycle-%d diameter = %d, want %d", n, d, n/2)
		}
	}
}

func TestStarAndComplete(t *testing.T) {
	s := Star(50)
	if Diameter(s) != 2 || s.MaxDegree() != 49 {
		t.Fatalf("star-50: diam=%d maxdeg=%d", Diameter(s), s.MaxDegree())
	}
	k := Complete(12)
	if Diameter(k) != 1 || k.M() != 66 {
		t.Fatalf("K12: diam=%d m=%d", Diameter(k), k.M())
	}
}

func TestGridDiameter(t *testing.T) {
	g := Grid(5, 8)
	if g.N() != 40 {
		t.Fatalf("n = %d", g.N())
	}
	if d := Diameter(g); d != 11 {
		t.Fatalf("grid 5x8 diameter = %d, want 11", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTorusRegularity(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(NodeID(v)) != 4 {
			t.Fatalf("torus node %d degree %d, want 4", v, g.Degree(NodeID(v)))
		}
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(31)
	if g.M() != 30 || !IsConnected(g) {
		t.Fatalf("bintree-31: m=%d", g.M())
	}
	// Depth of complete binary tree on 31 nodes is 4; diameter 8.
	if d := Diameter(g); d != 8 {
		t.Fatalf("diameter = %d, want 8", d)
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	if d := Diameter(g); d != 4 {
		t.Fatalf("Q4 diameter = %d", d)
	}
}

func TestGNPConnectedAndSeeded(t *testing.T) {
	a := GNP(80, 0.05, 7)
	b := GNP(80, 0.05, 7)
	c := GNP(80, 0.05, 8)
	if !IsConnected(a) {
		t.Fatal("GNP not stitched connected")
	}
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	if a.M() == c.M() && equalEdges(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func equalEdges(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		av, bv := a.Neighbors(NodeID(v)), b.Neighbors(NodeID(v))
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

func TestUnitDiskConnected(t *testing.T) {
	g := UnitDisk(200, ConnectivityRadius(200), 3)
	if !IsConnected(g) {
		t.Fatal("UDG not connected after stitching")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterChainShape(t *testing.T) {
	g := ClusterChain(10, 8)
	if g.N() != 80 {
		t.Fatalf("n = %d", g.N())
	}
	// Diameter: within-clique hop at both ends + bridges: chain cliques
	// contribute 2 hops each except traversal pattern; just check the
	// range Θ(chain).
	d := Diameter(g)
	if d < 10 || d > 30 {
		t.Fatalf("clusterchain diameter = %d, want Θ(chain)=Θ(10)", d)
	}
	if g.MaxDegree() < 7 {
		t.Fatalf("max degree = %d, want ≥ clique-1", g.MaxDegree())
	}
}

func TestLollipopAndCaterpillar(t *testing.T) {
	l := Lollipop(10, 20)
	if !IsConnected(l) || l.N() != 30 {
		t.Fatal("lollipop malformed")
	}
	if d := Diameter(l); d != 21 {
		t.Fatalf("lollipop diameter = %d, want 21", d)
	}
	c := Caterpillar(15, 3)
	if !IsConnected(c) || c.N() != 60 {
		t.Fatal("caterpillar malformed")
	}
	if d := Diameter(c); d != 16 {
		t.Fatalf("caterpillar diameter = %d, want 16", d)
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	g := RandomRegular(100, 6, 11)
	if !IsConnected(g) {
		t.Fatal("random regular not connected")
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(NodeID(v)) > 7 {
			t.Fatalf("node %d degree %d > d+1", v, g.Degree(NodeID(v)))
		}
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := Path(10)
	res := BFS(g, 0, 9)
	if res.Dist[5] != 4 {
		t.Fatalf("dist[5] = %d, want 4 (min of 5, 4)", res.Dist[5])
	}
	if res.MaxDist != 4 {
		t.Fatalf("MaxDist = %d", res.MaxDist)
	}
}

func TestBFSParentsFormTree(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNP(60, 0.08, seed)
		res := BFS(g, 0)
		for v := 1; v < g.N(); v++ {
			p := res.Parent[v]
			if p < 0 {
				return false // connected so everyone has a parent
			}
			if res.Dist[v] != res.Dist[p]+1 {
				return false
			}
			if !g.HasEdge(NodeID(v), p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterApproxBounds(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNP(50, 0.1, seed)
		exact := Diameter(g)
		approx := DiameterApprox(g)
		// Double sweep is a lower bound on the diameter and at least
		// half of it.
		return approx <= exact && 2*approx >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDistanceTriangleProperty(t *testing.T) {
	// For every edge (u,v): |dist(u) - dist(v)| <= 1.
	f := func(seed uint64) bool {
		g := UnitDisk(80, ConnectivityRadius(80), seed)
		res := BFS(g, 0)
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Neighbors(NodeID(v)) {
				d := res.Dist[v] - res.Dist[u]
				if d < -1 || d > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTOutput(t *testing.T) {
	g := Path(3)
	var sb strings.Builder
	if err := DOT(&sb, g, []string{"s", "m", "t"}, []NodeID{-1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph G {", "0 -- 1", "1 -- 2", "penwidth=3", `label="s"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestEccentricityPanicsOnDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Eccentricity(g, 0)
}

func BenchmarkBFSGrid64(b *testing.B) {
	g := Grid(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BFS(g, 0)
	}
}

func BenchmarkBuildGNP1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GNP(1000, 0.01, uint64(i))
	}
}
